package collective

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mpi4spark/internal/fabric"
	"mpi4spark/internal/metrics"
	"mpi4spark/internal/spark/rpc"
	"mpi4spark/internal/vtime"
)

type fixture struct {
	fab   *fabric.Fabric
	nodes []*fabric.Node
	envs  []*rpc.Env
	group *Group
}

func makeFixture(t *testing.T, n int, model *fabric.Model, cfg Config) *fixture {
	t.Helper()
	fx := &fixture{fab: fabric.New(model)}
	sts := make([]*Station, n)
	for i := 0; i < n; i++ {
		node := fx.fab.AddNode(fmt.Sprintf("n%d", i))
		env, err := rpc.NewEnv(fmt.Sprintf("env%d", i), node, "rpc", rpc.DefaultEnvConfig())
		if err != nil {
			t.Fatal(err)
		}
		fx.nodes = append(fx.nodes, node)
		fx.envs = append(fx.envs, env)
		sts[i] = NewStation(env)
	}
	t.Cleanup(func() {
		for _, e := range fx.envs {
			e.Shutdown()
		}
	})
	fx.group = NewGroup(cfg, sts)
	return fx
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestBcastSizesAndRanks(t *testing.T) {
	cfg := Config{ChunkBytes: 4096, SmallLimit: 1024}
	sizes := []int{0, 1, 1024, 1025, 4096, 4097, 3*4096 + 5}
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, root := range []int{0, n - 1} {
			fx := makeFixture(t, n, fabric.NewZeroModel(), cfg)
			for _, size := range sizes {
				data := pattern(size)
				op := NextOpID()
				var mu sync.Mutex
				got := make(map[int][]byte)
				err := fx.group.Run(op, "bcast", size, func(rank int) error {
					out, release, _, err := fx.group.Bcast(op, rank, root, data, 0)
					if err != nil {
						return err
					}
					mu.Lock()
					got[rank] = append([]byte(nil), out...)
					mu.Unlock()
					release()
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d root=%d size=%d: %v", n, root, size, err)
				}
				for r := 0; r < n; r++ {
					if !bytes.Equal(got[r], data) {
						t.Fatalf("n=%d root=%d size=%d rank=%d: payload mismatch (%d vs %d bytes)",
							n, root, size, r, len(got[r]), len(data))
					}
				}
			}
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	cfg := Config{ChunkBytes: 256, SmallLimit: 64}
	for _, n := range []int{1, 2, 3, 5} {
		for _, vecLen := range []int{0, 1, 7, 33, 200} {
			fx := makeFixture(t, n, fabric.NewZeroModel(), cfg)
			op := NextOpID()
			want := make([]float64, vecLen)
			inputs := make([][]byte, n)
			for r := 0; r < n; r++ {
				v := make([]float64, vecLen)
				for i := range v {
					v[i] = float64(r+1) * float64(i+1)
					want[i] += v[i]
				}
				inputs[r] = EncodeFloat64s(v)
			}
			var root []byte
			err := fx.group.Run(op, "reduce", 8*vecLen, func(rank int) error {
				out, _, err := fx.group.Reduce(op, rank, 0, inputs[rank], Float64Sum, 0)
				if rank == 0 {
					root = out
				}
				return err
			})
			if err != nil {
				t.Fatalf("n=%d len=%d: %v", n, vecLen, err)
			}
			got := DecodeFloat64s(root)
			if len(got) != vecLen {
				t.Fatalf("n=%d len=%d: got %d elements", n, vecLen, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d len=%d elem %d: got %v want %v", n, vecLen, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllreduceSmallAndRing(t *testing.T) {
	// SmallLimit 64 forces the ring for the larger vectors; vecLen 1500*8
	// bytes with ChunkBytes 1024 exercises multi-chunk ring segments, and
	// n=5 a non-power-of-two non-even split.
	cfg := Config{ChunkBytes: 1024, SmallLimit: 64}
	for _, n := range []int{1, 2, 3, 5} {
		for _, vecLen := range []int{1, 4, 130, 1500} {
			fx := makeFixture(t, n, fabric.NewZeroModel(), cfg)
			op := NextOpID()
			want := make([]float64, vecLen)
			inputs := make([][]byte, n)
			for r := 0; r < n; r++ {
				v := make([]float64, vecLen)
				for i := range v {
					v[i] = float64(r*31+i%17) / 4
					want[i] += v[i]
				}
				inputs[r] = EncodeFloat64s(v)
			}
			var mu sync.Mutex
			got := make(map[int][]float64)
			err := fx.group.Run(op, "allreduce", 8*vecLen, func(rank int) error {
				out, release, _, err := fx.group.Allreduce(op, rank, inputs[rank], Float64Sum, 0)
				if err != nil {
					return err
				}
				mu.Lock()
				got[rank] = DecodeFloat64s(out)
				mu.Unlock()
				release()
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d len=%d: %v", n, vecLen, err)
			}
			for r := 0; r < n; r++ {
				if len(got[r]) != vecLen {
					t.Fatalf("n=%d len=%d rank=%d: %d elements", n, vecLen, r, len(got[r]))
				}
				for i := range got[r] {
					if got[r][i] != want[i] {
						t.Fatalf("n=%d len=%d rank=%d elem %d: got %v want %v",
							n, vecLen, r, i, got[r][i], want[i])
					}
				}
			}
		}
	}
}

// TestBcastRootLinkIsOB is the acceptance check that the pipelined chain
// broadcast ships a B-byte blob over the root's own link once — O(B) —
// rather than fanning out E copies.
func TestBcastRootLinkIsOB(t *testing.T) {
	const B = 1 << 22
	const n = 6
	cfg := Config{ChunkBytes: 64 << 10, SmallLimit: 64 << 10}
	fx := makeFixture(t, n, fabric.NewIBHDRModel(), cfg)
	data := pattern(B)
	op := NextOpID()
	fx.nodes[0].ResetTraffic()
	err := fx.group.Run(op, "bcast", B, func(rank int) error {
		out, release, _, err := fx.group.Bcast(op, rank, 0, data, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(out, data) {
			return errors.New("payload mismatch")
		}
		release()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := fx.nodes[0].TxBytes()
	if tx < B {
		t.Fatalf("root tx = %d < payload %d", tx, B)
	}
	// Allow framing overhead but nothing near a 2nd copy, let alone the
	// (n-1)·B a driver fan-out would push.
	if tx > B+B/4 {
		t.Fatalf("root tx = %d, want ~%d (O(B)); fan-out would be %d", tx, B, (n-1)*B)
	}
}

func TestCollectiveDeterminism(t *testing.T) {
	run := func() vtime.Stamp {
		cfg := Config{ChunkBytes: 8 << 10, SmallLimit: 1 << 10}
		fx := makeFixture(t, 5, fabric.NewIBHDRModel(), cfg)
		data := pattern(200 << 10)
		op := NextOpID()
		var mu sync.Mutex
		var maxVT vtime.Stamp
		err := fx.group.Run(op, "bcast", len(data), func(rank int) error {
			_, release, vt, err := fx.group.Bcast(op, rank, 0, data, 0)
			if err != nil {
				return err
			}
			release()
			mu.Lock()
			maxVT = vtime.Max(maxVT, vt)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxVT
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("bcast completion vt nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("vt = %v, want > 0", a)
	}
}

func TestCollectiveMetricsCounters(t *testing.T) {
	cfg := Config{ChunkBytes: 1024, SmallLimit: 64}
	fx := makeFixture(t, 3, fabric.NewZeroModel(), cfg)

	before := metrics.Snapshot()

	data := pattern(5000)
	op := NextOpID()
	if err := fx.group.Run(op, "bcast", len(data), func(rank int) error {
		_, release, _, err := fx.group.Bcast(op, rank, 0, data, 0)
		if err == nil {
			release()
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	vec := EncodeFloat64s(make([]float64, 400))
	op2 := NextOpID()
	if err := fx.group.Run(op2, "allreduce", len(vec), func(rank int) error {
		_, release, _, err := fx.group.Allreduce(op2, rank, vec, Float64Sum, 0)
		if err == nil {
			release()
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if d := before.DeltaValue(metrics.CollectiveBcastOps); d != 1 {
		t.Fatalf("bcast ops delta = %d, want 1", d)
	}
	if d := before.DeltaValue(metrics.CollectiveBcastBytes); d != 5000 {
		t.Fatalf("bcast bytes delta = %d, want 5000", d)
	}
	if d := before.DeltaValue(metrics.CollectiveBcastChunks); d <= 0 {
		t.Fatalf("bcast chunks delta = %d, want > 0", d)
	}
	if d := before.DeltaValue(metrics.CollectiveAllreduceOps); d != 1 {
		t.Fatalf("allreduce ops delta = %d, want 1", d)
	}
	if d := before.DeltaValue(metrics.CollectiveAllreduceBytes); d != int64(len(vec)) {
		t.Fatalf("allreduce bytes delta = %d, want %d", d, len(vec))
	}
	if d := before.DeltaValue(metrics.CollectiveAllreduceChunks); d <= 0 {
		t.Fatalf("allreduce chunks delta = %d, want > 0", d)
	}
}

// TestAbortUnblocksSiblings kills one rank's op mid-collective and checks
// the others fail fast instead of hanging.
func TestAbortUnblocksSiblings(t *testing.T) {
	cfg := Config{ChunkBytes: 1024, SmallLimit: 64}
	fx := makeFixture(t, 3, fabric.NewZeroModel(), cfg)
	data := pattern(100 << 10)
	op := NextOpID()
	boom := errors.New("rank 2 died")
	err := fx.group.Run(op, "bcast", len(data), func(rank int) error {
		if rank == 2 {
			return boom
		}
		_, release, _, err := fx.group.Bcast(op, rank, 0, data, 0)
		if err == nil {
			release()
		}
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestStationCloseFailsBlockedRecv shuts an environment down while a
// receive is blocked on it.
func TestStationCloseFailsBlockedRecv(t *testing.T) {
	fx := makeFixture(t, 2, fabric.NewZeroModel(), Config{})
	op := NextOpID()
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := fx.group.Bcast(op, 1, 0, nil, 0)
		errCh <- err
	}()
	fx.envs[1].Shutdown()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
