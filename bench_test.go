// Benchmarks regenerating the paper's evaluation: one target per figure
// (Figures 8-12), the §VII headline numbers, and the ablations called out
// in DESIGN.md §5. All results are virtual-time measurements reported via
// b.ReportMetric (vt-us/op or vt-ms/op); wall-clock numbers only reflect
// how fast the simulation executes.
//
//	go test -bench=. -benchmem
package mpi4spark_test

import (
	"fmt"
	"testing"
	"time"

	"mpi4spark/internal/fabric"
	"mpi4spark/internal/harness"
	"mpi4spark/internal/hibench"
	"mpi4spark/internal/mpi"
	"mpi4spark/internal/ohb"
	"mpi4spark/internal/spark"
	"mpi4spark/internal/ucr"
	"mpi4spark/internal/vtime"
)

// benchOpts keeps -bench runs laptop-quick; cmd/experiments exposes the
// larger paper-regime scales.
func benchOpts() harness.Options {
	return harness.Options{
		Workers:        4,
		WorkerCounts:   []int{2, 4},
		BytesPerWorker: 2 << 20,
		TotalBytes:     8 << 20,
		SlotsPerWorker: 2,
		Seed:           2022,
	}
}

// BenchmarkFig8NettyPingPong regenerates Figure 8: Netty-level ping-pong
// latency for NIO vs Netty+MPI at small and large message sizes.
func BenchmarkFig8NettyPingPong(b *testing.B) {
	for _, size := range []int{64, 64 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var nio, mpiLat time.Duration
			for i := 0; i < b.N; i++ {
				points, _, err := harness.RunFig8([]int{size})
				if err != nil {
					b.Fatal(err)
				}
				nio, mpiLat = points[0].NIO, points[0].MPI
			}
			b.ReportMetric(float64(nio.Microseconds()), "nio-vt-us")
			b.ReportMetric(float64(mpiLat.Microseconds()), "mpi-vt-us")
			b.ReportMetric(float64(nio)/float64(mpiLat), "speedup")
		})
	}
}

// runOHBBench builds a cluster, runs one OHB benchmark, and reports the
// virtual total and shuffle-read times.
func runOHBBench(b *testing.B, backend spark.Backend, workers int, bench string) {
	b.Helper()
	o := benchOpts()
	cfg := ohb.Config{
		Mappers:        workers * o.SlotsPerWorker,
		Reducers:       workers * o.SlotsPerWorker,
		PairsPerMapper: int(o.BytesPerWorker * int64(workers) / int64(workers*o.SlotsPerWorker) / 108),
		ValueBytes:     100,
		Seed:           o.Seed,
	}
	var total, read vtime.Stamp
	for i := 0; i < b.N; i++ {
		cl, err := harness.BuildCluster(harness.ClusterSpec{
			System: harness.Frontera, Workers: workers, Backend: backend,
			SlotsPerWorker: o.SlotsPerWorker,
		})
		if err != nil {
			b.Fatal(err)
		}
		var res *ohb.Result
		if bench == "SortBy" {
			res, err = ohb.RunSortByTest(cl.Ctx, cfg)
		} else {
			res, err = ohb.RunGroupByTest(cl.Ctx, cfg)
		}
		cl.Close()
		if err != nil {
			b.Fatal(err)
		}
		total, read = res.Total, res.ShuffleReadTime()
	}
	b.ReportMetric(float64(total.AsDuration().Microseconds())/1000, "total-vt-ms")
	b.ReportMetric(float64(read.AsDuration().Microseconds())/1000, "read-vt-ms")
}

// BenchmarkFig9BasicVsOptimized regenerates Figure 9: the two MPI4Spark
// designs against Vanilla Spark on GroupByTest.
func BenchmarkFig9BasicVsOptimized(b *testing.B) {
	for _, backend := range []spark.Backend{spark.BackendVanilla, spark.BackendMPIBasic, spark.BackendMPIOpt} {
		b.Run(backend.String(), func(b *testing.B) {
			runOHBBench(b, backend, 2, "GroupBy")
		})
	}
}

// BenchmarkFig10WeakScaling regenerates Figure 10: GroupBy/SortBy weak
// scaling across backends.
func BenchmarkFig10WeakScaling(b *testing.B) {
	for _, bench := range []string{"GroupBy", "SortBy"} {
		for _, workers := range []int{2, 4} {
			for _, backend := range []spark.Backend{spark.BackendVanilla, spark.BackendRDMA, spark.BackendMPIOpt} {
				b.Run(fmt.Sprintf("%s/w=%d/%s", bench, workers, backend), func(b *testing.B) {
					runOHBBench(b, backend, workers, bench)
				})
			}
		}
	}
}

// BenchmarkFig11StrongScaling regenerates Figure 11: fixed data volume
// across worker counts (GroupByTest).
func BenchmarkFig11StrongScaling(b *testing.B) {
	o := benchOpts()
	for _, workers := range o.WorkerCounts {
		for _, backend := range []spark.Backend{spark.BackendVanilla, spark.BackendMPIOpt} {
			b.Run(fmt.Sprintf("w=%d/%s", workers, backend), func(b *testing.B) {
				cfg := ohb.Config{
					Mappers:        workers * o.SlotsPerWorker,
					Reducers:       workers * o.SlotsPerWorker,
					PairsPerMapper: int(o.TotalBytes / int64(workers*o.SlotsPerWorker) / 108),
					ValueBytes:     100,
					Seed:           o.Seed,
				}
				var total vtime.Stamp
				for i := 0; i < b.N; i++ {
					cl, err := harness.BuildCluster(harness.ClusterSpec{
						System: harness.Frontera, Workers: workers, Backend: backend,
						SlotsPerWorker: o.SlotsPerWorker,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := ohb.RunGroupByTest(cl.Ctx, cfg)
					cl.Close()
					if err != nil {
						b.Fatal(err)
					}
					total = res.Total
				}
				b.ReportMetric(float64(total.AsDuration().Microseconds())/1000, "total-vt-ms")
			})
		}
	}
}

// BenchmarkFig12HiBenchFrontera regenerates Figure 12(a,b): HiBench
// workloads on the Frontera profile.
func BenchmarkFig12HiBenchFrontera(b *testing.B) {
	benchmarkHiBench(b, harness.Frontera,
		[]string{"LDA", "SVM", "GMM", "Repartition", "NWeight", "TeraSort"})
}

// BenchmarkFig12HiBenchStampede2 regenerates Figure 12(c): HiBench on the
// Stampede2/Omni-Path profile (no RDMA-Spark baseline there).
func BenchmarkFig12HiBenchStampede2(b *testing.B) {
	benchmarkHiBench(b, harness.Stampede2, []string{"LR", "GMM", "SVM", "Repartition"})
}

func benchmarkHiBench(b *testing.B, sys harness.System, workloads []string) {
	b.Helper()
	o := benchOpts()
	o.Workers = 2
	for _, wl := range workloads {
		b.Run(wl, func(b *testing.B) {
			var rows []harness.HiBenchRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, _, err = harness.RunFig12(o, sys, []string{wl})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range rows {
				b.ReportMetric(float64(r.Total.AsDuration().Microseconds())/1000,
					fmt.Sprintf("%s-vt-ms", r.Backend))
			}
		})
	}
}

// BenchmarkHeadlineGroupBy448 regenerates the §VII headline: GroupByTest
// with 8 workers (the paper's 448-core configuration), MPI4Spark vs
// Vanilla vs RDMA-Spark.
func BenchmarkHeadlineGroupBy448(b *testing.B) {
	o := benchOpts()
	o.BytesPerWorker = 4 << 20
	var h *harness.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, _, err = harness.RunHeadline(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.E2EVsVanilla, "e2e-vs-ipoib-x")
	b.ReportMetric(h.E2EVsRDMA, "e2e-vs-rdma-x")
	b.ReportMetric(h.ReadVsVanilla, "read-vs-ipoib-x")
	b.ReportMetric(h.ReadVsRDMA, "read-vs-rdma-x")
}

// BenchmarkAblationEagerThreshold sweeps the MPI eager/rendezvous switch
// point and reports the one-way latency of a 128 KiB message under each —
// the protocol-boundary design choice in internal/mpi.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	const msgSize = 128 << 10
	for _, threshold := range []int{16 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("eager=%dKiB", threshold>>10), func(b *testing.B) {
			var lat vtime.Stamp
			for i := 0; i < b.N; i++ {
				f := fabric.New(fabric.NewIBHDRModel())
				n0, n1 := f.AddNode("a"), f.AddNode("b")
				w := mpi.NewWorld(f)
				w.EagerThreshold = threshold
				comm := w.InitWorld([]*fabric.Node{n0, n1})
				done := make(chan vtime.Stamp, 1)
				go func() {
					_, st := comm.Handle(1).Recv(0, 1, 0)
					done <- st.VT
				}()
				comm.Handle(0).Send(1, 1, make([]byte, msgSize), 0)
				lat = <-done
			}
			b.ReportMetric(float64(lat.AsDuration().Microseconds()), "vt-us")
		})
	}
}

// BenchmarkAblationPollInterval sweeps the Basic design's compute
// starvation factor (the cost of the Iprobe/non-blocking-select loop) and
// reports GroupByTest totals — why the paper abandoned the Basic design.
func BenchmarkAblationPollInterval(b *testing.B) {
	o := benchOpts()
	for _, inflation := range []float64{1.0, 1.5, 2.0, 3.0} {
		b.Run(fmt.Sprintf("inflation=%.1f", inflation), func(b *testing.B) {
			cfg := ohb.Config{
				Mappers: 4, Reducers: 4,
				PairsPerMapper: int(o.BytesPerWorker / 2 / 108),
				ValueBytes:     100, Seed: o.Seed,
			}
			var total vtime.Stamp
			for i := 0; i < b.N; i++ {
				cl, err := harness.BuildCluster(harness.ClusterSpec{
					System: harness.Frontera, Workers: 2, Backend: spark.BackendMPIBasic,
					SlotsPerWorker: 2, BasicComputeInflation: inflation,
					// Full per-record compute (no core consolidation) so the
					// starvation factor has compute to starve.
					CPU: spark.DefaultCPUModel(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := ohb.RunGroupByTest(cl.Ctx, cfg)
				cl.Close()
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(float64(total.AsDuration().Microseconds())/1000, "total-vt-ms")
		})
	}
}

// BenchmarkAblationHeaderPath isolates the Optimized design's
// header-over-socket choice: Basic without starvation sends everything
// (headers included) over MPI, Optimized keeps headers on the socket.
func BenchmarkAblationHeaderPath(b *testing.B) {
	o := benchOpts()
	cfg := ohb.Config{
		Mappers: 4, Reducers: 4,
		PairsPerMapper: int(o.BytesPerWorker / 2 / 108),
		ValueBytes:     100, Seed: o.Seed,
	}
	cases := []struct {
		name      string
		backend   spark.Backend
		inflation float64
	}{
		{"headers-on-socket(optimized)", spark.BackendMPIOpt, 0},
		{"all-over-mpi(basic,no-starvation)", spark.BackendMPIBasic, 1.0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var total vtime.Stamp
			for i := 0; i < b.N; i++ {
				cl, err := harness.BuildCluster(harness.ClusterSpec{
					System: harness.Frontera, Workers: 2, Backend: c.backend,
					SlotsPerWorker: 2, BasicComputeInflation: c.inflation,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := ohb.RunGroupByTest(cl.Ctx, cfg)
				cl.Close()
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(float64(total.AsDuration().Microseconds())/1000, "total-vt-ms")
		})
	}
}

// BenchmarkAblationChunkSize sweeps UCR's chunk size, showing why
// RDMA-Spark's chunked protocol trails MPI's single rendezvous per block.
func BenchmarkAblationChunkSize(b *testing.B) {
	o := benchOpts()
	cfg := ohb.Config{
		Mappers: 4, Reducers: 4,
		PairsPerMapper: int(o.BytesPerWorker / 2 / 108),
		ValueBytes:     100, Seed: o.Seed,
	}
	for _, chunk := range []int{32 << 10, 128 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("chunk=%dKiB", chunk>>10), func(b *testing.B) {
			var total vtime.Stamp
			for i := 0; i < b.N; i++ {
				cl, err := harness.BuildCluster(harness.ClusterSpec{
					System: harness.Frontera, Workers: 2, Backend: spark.BackendRDMA,
					SlotsPerWorker: 2,
					UCR: ucr.Config{
						ChunkSize:        chunk,
						PerChunkOverhead: ucr.DefaultConfig().PerChunkOverhead,
						RegisterPerFetch: true,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := ohb.RunGroupByTest(cl.Ctx, cfg)
				cl.Close()
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(float64(total.AsDuration().Microseconds())/1000, "total-vt-ms")
		})
	}
}

// BenchmarkHiBenchWorkloadsRaw measures each workload implementation on a
// fixed vanilla cluster — wall-time throughput of the simulation itself.
func BenchmarkHiBenchWorkloadsRaw(b *testing.B) {
	cl, err := harness.BuildCluster(harness.ClusterSpec{
		System: harness.Frontera, Workers: 2, Backend: spark.BackendVanilla, SlotsPerWorker: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.Run("SVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hibench.RunSVM(cl.Ctx, hibench.MLConfig{Parts: 4, PerPart: 500, Dim: 16, Iterations: 2, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TeraSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hibench.RunTeraSort(cl.Ctx, hibench.TeraSortConfig{Parts: 4, RowsPer: 1000, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
