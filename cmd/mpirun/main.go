// Command mpirun demonstrates the paper's Figure 3 launch flow on the
// simulated cluster: SPMD wrapper ranks fork the Spark roles (workers,
// master, driver), the workers exchange executor specifications with
// MPI_Allgather and spawn the executors collectively with
// MPI_Comm_spawn_multiple, and the resulting MPI4Spark cluster runs a
// demonstration job (a distributed word count).
//
// Usage:
//
//	mpirun -np 4                 # 4 wrapper ranks: 2 workers + master + driver
//	mpirun -np 10 -design basic  # 8 workers under MPI4Spark-Basic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpi4spark/internal/core"
	"mpi4spark/internal/fabric"
	"mpi4spark/internal/spark"
)

func main() {
	var (
		np     = flag.Int("np", 4, "number of wrapper ranks (workers = np-2)")
		design = flag.String("design", "optimized", "optimized|basic")
		slots  = flag.Int("slots", 2, "executor cores per worker")
	)
	flag.Parse()
	if *np < 3 {
		fmt.Fprintln(os.Stderr, "mpirun: need -np >= 3 (at least one worker plus master and driver)")
		os.Exit(1)
	}
	workers := *np - 2

	d := core.DesignOptimized
	if *design == "basic" {
		d = core.DesignBasic
	}

	f := fabric.New(fabric.NewIBHDRModel())
	wn := make([]*fabric.Node, workers)
	for i := range wn {
		wn[i] = f.AddNode(fmt.Sprintf("node-%c", 'A'+i))
	}
	masterNode := f.AddNode("node-master")
	driverNode := f.AddNode("node-driver")

	fmt.Printf("Step A: launching %d wrapper processes under the MPI launcher\n", *np)
	for r := 0; r < workers; r++ {
		fmt.Printf("  rank %d -> worker %d on %s\n", r, r, wn[r].Name())
	}
	fmt.Printf("  rank %d -> master on %s\n", workers, masterNode.Name())
	fmt.Printf("  rank %d -> driver on %s\n", workers+1, driverNode.Name())

	sparkCfg := spark.DefaultConfig()
	sparkCfg.DefaultParallelism = workers * *slots
	cl, err := core.LaunchMPICluster(core.ClusterConfig{
		Fabric:         f,
		WorkerNodes:    wn,
		MasterNode:     masterNode,
		DriverNode:     driverNode,
		SlotsPerWorker: *slots,
		Design:         d,
		CPU:            spark.DefaultCPUModel(),
		Spark:          sparkCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpirun:", err)
		os.Exit(1)
	}
	defer cl.Close()

	fmt.Printf("Step B: Spark roles forked; workers allgathered executor specs\n")
	fmt.Printf("Step C: %d executors spawned via MPI_Comm_spawn_multiple (DPM_COMM + intercomm)\n",
		len(cl.Executors))
	for _, e := range cl.Executors {
		fmt.Printf("  %s on %s (%d slots)\n", e.ID(), e.Node().Name(), e.Slots())
	}

	// Demonstration workload: distributed word count through the full
	// RDD/shuffle path, now communicating per the selected design.
	corpus := []string{
		"spark meets mpi", "mpi for spark", "netty meets mpi",
		"high performance spark", "mpi mpi mpi",
	}
	lines := spark.Parallelize(cl.Ctx, corpus, workers)
	words := spark.FlatMap(lines, strings.Fields)
	pairs := spark.Map(words, func(w string) spark.Pair[string, int64] {
		return spark.Pair[string, int64]{K: w, V: 1}
	})
	conf := spark.ShuffleConf[string, int64]{
		Codec: spark.PairCodec[string, int64]{Key: spark.StringCodec{}, Val: spark.Int64Codec{}},
		Ops:   spark.StringKey{},
		Parts: workers,
	}
	counts, err := spark.Collect(spark.ReduceByKey(pairs, conf, func(a, b int64) int64 { return a + b }))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpirun: job failed:", err)
		os.Exit(1)
	}
	fmt.Printf("\nword count over %s (%d distinct words):\n", d, len(counts))
	for _, p := range counts {
		fmt.Printf("  %-12s %d\n", p.K, p.V)
	}
	for _, s := range cl.Ctx.Stages() {
		fmt.Printf("stage %-22s %v\n", s.Name, s.Duration().AsDuration())
	}
}
