// Command eventlog replays a JSONL lifecycle event log (recorded via
// spark.Config.EventLogPath or the -eventlog flag of cmd/ohb and
// cmd/hibench) into the paper-style analyses: a stage timeline, the
// per-stage shuffle-wait vs. compute breakdown, and a critical-path
// summary.
//
// Usage:
//
//	eventlog run.jsonl
//	eventlog -md -summary run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"mpi4spark/internal/metrics"
	"mpi4spark/internal/obs"
)

func main() {
	var (
		markdown = flag.Bool("md", false, "emit Markdown")
		summary  = flag.Bool("summary", false, "also print whole-log totals (events, bytes, faults)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eventlog [-md] [-summary] <log.jsonl>")
		os.Exit(2)
	}

	events, err := obs.ReadLog(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("event log %s is empty", flag.Arg(0)))
	}
	report := obs.Analyze(events)

	tables := []*metrics.Table{
		report.TimelineTable(),
		report.BreakdownTable(),
		report.CriticalPathTable(),
	}
	if len(report.Batches) > 0 {
		tables = append(tables, report.BatchTable())
	}
	if *summary {
		local, remote := report.Totals()
		t := &metrics.Table{
			Title:   "Log totals",
			Columns: []string{"Metric", "Value"},
		}
		t.AddRow("events", len(report.Events))
		t.AddRow("jobs", len(report.Jobs))
		t.AddRow("shuffle bytes local", local)
		t.AddRow("shuffle bytes remote", remote)
		t.AddRow("collective ops", report.Collective)
		t.AddRow("adapted stages", report.AdaptedStages)
		t.AddRow("partitions split", report.Splits)
		t.AddRow("coalesce groups", report.Coalesces)
		t.AddRow("speculative attempts", report.Speculated)
		t.AddRow("speculative wins", report.SpecWon)
		t.AddRow("executors lost", report.Lost)
		t.AddRow("executors replaced", report.Replaced)
		t.AddRow("fetch failures", report.FetchFails)
		t.AddRow("service pushed bytes", report.PushedBytes)
		t.AddRow("service merged bytes", report.MergedBytes)
		t.AddRow("service served bytes", report.ServedBytes)
		if len(report.Batches) > 0 {
			var events int64
			for _, b := range report.Batches {
				events += b.Events
			}
			t.AddRow("streaming batches", len(report.Batches))
			t.AddRow("streaming events ingested", events)
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		if *markdown {
			t.WriteMarkdown(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eventlog:", err)
	os.Exit(1)
}
