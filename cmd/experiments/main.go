// Command experiments regenerates every figure and table of the paper's
// evaluation (Figures 8-12 plus the §VII headline numbers) on the simulated
// cluster and prints them as text or Markdown.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig10 -bench GroupBy -workers 2,4,8 -bytes-per-worker 8388608
//	experiments -exp headline -md
//	experiments -list-systems
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"mpi4spark/internal/harness"
	"mpi4spark/internal/metrics"
)

func main() {
	var (
		exp            = flag.String("exp", "all", "experiment: fig8|fig9|fig10|fig11|fig12|fig12c|headline|chaos|skew|netchaos|streaming|all")
		eventLogDir    = flag.String("eventlog-dir", "", "chaos/skew/netchaos/streaming: also record one JSONL event log per run in this directory")
		bench          = flag.String("bench", "GroupBy", "OHB benchmark for fig10/fig11: GroupBy|SortBy")
		workers        = flag.Int("workers", 4, "base worker count (fig9/fig12)")
		workerCounts   = flag.String("worker-counts", "2,4,8", "scaling sweep worker counts (fig10/fig11)")
		bytesPerWorker = flag.Int64("bytes-per-worker", 8<<20, "weak-scaling data per worker (bytes)")
		totalBytes     = flag.Int64("total-bytes", 32<<20, "strong-scaling fixed data volume (bytes)")
		slots          = flag.Int("slots", 2, "task slots per worker")
		seed           = flag.Int64("seed", 2022, "deterministic data seed")
		markdown       = flag.Bool("md", false, "emit Markdown instead of aligned text")
		listSystems    = flag.Bool("list-systems", false, "print the Table III system profiles and exit")
		showCounters   = flag.Bool("counters", false, "print per-run counter deltas after each experiment")
	)
	flag.Parse()

	if *listSystems {
		t := &metrics.Table{
			Title:   "Table III: system profiles",
			Columns: []string{"System", "PaperCores/Node", "ScaledSlots", "Fabric", "RDMA-Spark"},
		}
		for _, s := range harness.Systems() {
			t.AddRow(s.Name, s.PaperCoresPerNode, s.SlotsPerWorker, s.NewModel().Name, s.SupportsRDMA)
		}
		emit(t, *markdown)
		return
	}

	var counts []int
	for _, part := range strings.Split(*workerCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -worker-counts entry %q", part))
		}
		counts = append(counts, n)
	}
	o := harness.Options{
		Workers:        *workers,
		WorkerCounts:   counts,
		BytesPerWorker: *bytesPerWorker,
		TotalBytes:     *totalBytes,
		SlotsPerWorker: *slots,
		Seed:           *seed,
	}

	run := func(name string) {
		// Counters are process-global and accumulate across experiments in
		// one invocation; snapshot so each run reports only its own deltas.
		snap := metrics.Snapshot()
		defer func() {
			if *showCounters {
				emitCounterDeltas(name, snap.Delta(), *markdown)
			}
		}()
		switch name {
		case "fig8":
			_, t, err := harness.RunFig8(nil)
			check(err)
			emit(t, *markdown)
		case "fig9":
			t, err := harness.RunFig9(o)
			check(err)
			emit(t, *markdown)
		case "fig10":
			_, t, err := harness.RunFig10(o, *bench)
			check(err)
			emit(t, *markdown)
		case "fig11":
			_, t, err := harness.RunFig11(o, *bench)
			check(err)
			emit(t, *markdown)
		case "fig12":
			_, t, err := harness.RunFig12(o, harness.Frontera,
				[]string{"LDA", "SVM", "GMM", "Repartition", "NWeight", "TeraSort"})
			check(err)
			emit(t, *markdown)
		case "fig12c":
			_, t, err := harness.RunFig12(o, harness.Stampede2,
				[]string{"LR", "GMM", "SVM", "Repartition"})
			check(err)
			emit(t, *markdown)
		case "headline":
			_, t, err := harness.RunHeadline(o)
			check(err)
			emit(t, *markdown)
		case "chaos":
			_, t, err := harness.RunChaosKillTable(o, *eventLogDir)
			check(err)
			emit(t, *markdown)
		case "skew":
			_, t, err := harness.RunSkewTable(o, *eventLogDir)
			check(err)
			emit(t, *markdown)
		case "netchaos":
			_, t, err := harness.RunNetChaosTable(o, *eventLogDir)
			check(err)
			emit(t, *markdown)
		case "streaming":
			_, t, err := harness.RunStreamingTable(o, *eventLogDir)
			check(err)
			emit(t, *markdown)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig12c", "headline"} {
			fmt.Fprintf(os.Stderr, "running %s...\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

func emitCounterDeltas(name string, deltas map[string]int64, markdown bool) {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Counter deltas: %s", name),
		Columns: []string{"Counter", "Delta"},
	}
	names := make([]string, 0, len(deltas))
	for n := range deltas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, deltas[n])
	}
	emit(t, markdown)
}

func emit(t *metrics.Table, markdown bool) {
	if markdown {
		t.WriteMarkdown(os.Stdout)
	} else {
		t.WriteText(os.Stdout)
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
