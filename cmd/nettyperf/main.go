// Command nettyperf runs the Figure 8 Netty-level ping-pong benchmark:
// average half-round-trip latency of the NIO transport versus the
// Netty+MPI transport on the internal-cluster (IB-EDR) profile.
//
// Usage:
//
//	nettyperf
//	nettyperf -sizes 4,1024,65536,4194304 -md
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpi4spark/internal/harness"
)

func main() {
	var (
		sizesFlag = flag.String("sizes", "", "comma-separated message sizes in bytes (default: the paper's sweep)")
		markdown  = flag.Bool("md", false, "emit Markdown")
	)
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, p := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "nettyperf: bad size %q\n", p)
				os.Exit(1)
			}
			sizes = append(sizes, n)
		}
	}
	_, table, err := harness.RunFig8(sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nettyperf:", err)
		os.Exit(1)
	}
	if *markdown {
		table.WriteMarkdown(os.Stdout)
	} else {
		table.WriteText(os.Stdout)
	}
}
