// Command hibench runs one Intel HiBench workload on a chosen system
// profile and communication backend.
//
// Usage:
//
//	hibench -workload LDA -backend mpi -workers 4
//	hibench -workload TeraSort -backend vanilla -rows 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"mpi4spark/internal/harness"
	"mpi4spark/internal/hibench"
	"mpi4spark/internal/metrics"
	"mpi4spark/internal/spark"
)

func main() {
	var (
		workload    = flag.String("workload", "LDA", "LDA|SVM|LR|GMM|Repartition|TeraSort|NWeight")
		backendName = flag.String("backend", "mpi", "vanilla|rdma|mpi|mpi-basic")
		systemName  = flag.String("system", "Frontera", "Frontera|Stampede2|InternalCluster")
		workers     = flag.Int("workers", 4, "number of Spark workers")
		slots       = flag.Int("slots", 2, "task slots per worker")
		rows        = flag.Int("rows", 2000, "records (or docs/vertices) per partition")
		iterations  = flag.Int("iterations", 3, "ML iteration count")
		seed        = flag.Int64("seed", 2022, "data seed")
		markdown    = flag.Bool("md", false, "emit Markdown")
		eventLog    = flag.String("eventlog", "", "record lifecycle events as JSONL at this path (replay with cmd/eventlog)")
	)
	flag.Parse()

	var backend spark.Backend
	switch *backendName {
	case "vanilla", "ipoib":
		backend = spark.BackendVanilla
	case "rdma":
		backend = spark.BackendRDMA
	case "mpi", "mpi-opt":
		backend = spark.BackendMPIOpt
	case "mpi-basic":
		backend = spark.BackendMPIBasic
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}
	var system harness.System
	found := false
	for _, s := range harness.Systems() {
		if s.Name == *systemName {
			system, found = s, true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown system %q", *systemName))
	}

	cl, err := harness.BuildCluster(harness.ClusterSpec{
		System:         system,
		Workers:        *workers,
		Backend:        backend,
		SlotsPerWorker: *slots,
		EventLogPath:   *eventLog,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	parts := *workers * *slots
	var res *hibench.Result
	switch *workload {
	case "LDA":
		res, err = hibench.RunLDA(cl.Ctx, hibench.LDAConfig{
			Parts: parts, DocsPer: *rows / 10, Vocab: 2000, WordsPer: 40, K: 8,
			Iterations: *iterations, Seed: *seed,
		})
	case "SVM":
		res, err = hibench.RunSVM(cl.Ctx, hibench.MLConfig{
			Parts: parts, PerPart: *rows, Dim: 32, Iterations: *iterations, Seed: *seed,
		})
	case "LR":
		res, err = hibench.RunLogisticRegression(cl.Ctx, hibench.MLConfig{
			Parts: parts, PerPart: *rows, Dim: 32, Iterations: *iterations, Seed: *seed,
		})
	case "GMM":
		res, err = hibench.RunGMM(cl.Ctx, hibench.GMMConfig{
			Parts: parts, PerPart: *rows / 2, Dim: 16, K: 4, Iterations: *iterations, Seed: *seed,
		})
	case "Repartition":
		res, err = hibench.RunRepartition(cl.Ctx, hibench.RepartitionConfig{
			Parts: parts, RowsPer: *rows, ValueSize: 200, OutParts: parts, Seed: *seed,
		})
	case "TeraSort":
		res, err = hibench.RunTeraSort(cl.Ctx, hibench.TeraSortConfig{
			Parts: parts, RowsPer: *rows, Seed: *seed,
		})
	case "NWeight":
		res, err = hibench.RunNWeight(cl.Ctx, hibench.NWeightConfig{
			Parts: parts, Vertices: int64(parts * *rows / 8), Degree: 8, Hops: 2, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("HiBench %s: %s, %d workers x %d slots, %s backend",
			res.Name, system.Name, *workers, *slots, backend),
		Columns: []string{"Stage", "Duration", "ShuffleBytes"},
	}
	for _, s := range res.Stages {
		t.AddRow(s.Name, s.Duration(), s.ShuffleBytes)
	}
	t.AddRow("TOTAL", res.Total, "")
	t.Notes = append(t.Notes, fmt.Sprintf("workload metric: %g", res.Metric))
	if *markdown {
		t.WriteMarkdown(os.Stdout)
	} else {
		t.WriteText(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hibench:", err)
	os.Exit(1)
}
