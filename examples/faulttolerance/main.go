// Fault-tolerance example: first a worker node dies mid-application and
// the scheduler reroutes its tasks to the survivors; then an executor
// process on a healthy node is killed and the driver's supervision layer
// (heartbeats → ExecutorLost → replacement) detects the silent death and
// has the worker fork a replacement — the extension built on the
// MPI_Comm_connect/accept direction the paper names as future work
// (task retry with executor blacklisting, FetchFailed-driven map-stage
// resubmission for lost shuffle outputs, and executor liveness
// supervision; see DESIGN.md §6).
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"mpi4spark/internal/fabric"
	"mpi4spark/internal/metrics"
	"mpi4spark/internal/spark"
	"mpi4spark/internal/spark/deploy"
)

func main() {
	f := fabric.New(fabric.NewIBHDRModel())
	workers := []*fabric.Node{f.AddNode("w0"), f.AddNode("w1"), f.AddNode("w2")}
	cfg := spark.DefaultConfig()
	// Turn executor liveness supervision on: each executor heartbeats the
	// driver every 2ms of virtual time, and an executor silent for 30ms is
	// declared lost and replaced through the worker's launch path.
	cfg.HeartbeatInterval = 2 * time.Millisecond
	cfg.ExecutorTimeout = 30 * time.Millisecond
	cl, err := deploy.StartCluster(deploy.Config{
		Fabric:         f,
		WorkerNodes:    workers,
		MasterNode:     f.AddNode("master"),
		DriverNode:     f.AddNode("driver"),
		SlotsPerWorker: 2,
		Backend:        spark.BackendVanilla,
		CPU:            spark.DefaultCPUModel(),
		Spark:          cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	data := spark.Generate(cl.Ctx, 6, func(part int, tc *spark.TaskContext) []int64 {
		out := make([]int64, 1000)
		for i := range out {
			out[i] = int64(part*1000 + i)
		}
		tc.ChargeRecords(len(out), 8*len(out))
		return out
	})

	sum, err := spark.Reduce(data, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before failure: sum = %d across %d executors\n", sum, len(cl.Executors))

	// Materialize a shuffle so w1 holds registered map outputs when it
	// dies: losing them forces the scheduler down the FetchFailed path,
	// not just task rerouting.
	conf := spark.ShuffleConf[int64, int64]{
		Codec: spark.PairCodec[int64, int64]{Key: spark.Int64Codec{}, Val: spark.Int64Codec{}},
		Ops:   spark.Int64Key{},
		Parts: 6,
	}
	byKey := spark.ReduceByKey(
		spark.KeyBy(data, func(v int64) int64 { return v % 10 }),
		conf,
		func(a, b int64) int64 { return a + b },
	)
	if _, err := spark.Collect(byKey); err != nil {
		log.Fatal(err)
	}

	// --- Act 1: node death. The whole worker goes down, so there is
	// nothing left to fork a replacement from: the cluster must keep
	// running at reduced width.
	fmt.Println("injecting failure: node w1 goes down")
	f.FailNode("w1")

	// The same jobs run again. Map-only tasks destined for w1's executor
	// fail to launch and get rerouted; reduce tasks fetching w1's shuffle
	// blocks hit FetchFailedError, and the scheduler resubmits exactly the
	// lost map tasks on the survivors.
	sum2, err := spark.Reduce(data, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatalf("job did not survive the failure: %v", err)
	}
	fmt.Printf("after failure:  sum = %d (identical), rerouted around w1\n", sum2)

	groups, err := spark.Collect(byKey)
	if err != nil {
		log.Fatalf("shuffle job did not survive the failure: %v", err)
	}
	fmt.Printf("after failure:  %d shuffle groups recovered via %d map-stage resubmission(s)\n",
		len(groups), metrics.CounterValue("scheduler.map_stage.resubmissions"))

	// --- Act 2: executor process death on a healthy node. The process
	// dies silently — no failed fetch, no status update — so the only
	// signal is its heartbeat going quiet. Supervision expires it and the
	// owning worker forks an attempt-qualified replacement (exec-2.1).
	var victim *spark.Executor
	for _, e := range cl.Ctx.Executors() {
		if e.ID() == "exec-2" {
			victim = e
		}
	}
	fmt.Println("injecting failure: executor process exec-2 killed (node w2 stays up)")
	expired := metrics.CounterValue("heartbeat.expired")
	victim.Kill()

	// The cluster is idle, so detection comes purely from the heartbeat
	// pump: wait for the driver to expire the silent executor.
	for metrics.CounterValue("heartbeat.expired") == expired {
		time.Sleep(time.Millisecond)
	}

	sum3, err := spark.Reduce(data, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatalf("job did not survive the executor kill: %v", err)
	}
	execs := cl.Ctx.Executors()
	ids := make([]string, len(execs))
	for i, e := range execs {
		ids[i] = e.ID()
	}
	fmt.Printf("after kill:     sum = %d (identical), executors now %v\n", sum3, ids)
	fmt.Printf("supervision:    %d heartbeat(s) sent, %d expired, %d executor(s) lost, %d replaced\n",
		metrics.CounterValue("heartbeat.sent"), metrics.CounterValue("heartbeat.expired"),
		metrics.CounterValue("scheduler.executor.lost"), metrics.CounterValue("scheduler.executor.replaced"))
	for _, s := range cl.Ctx.Stages() {
		fmt.Printf("  %-22s %v\n", s.Name, s.Duration().AsDuration())
	}
}
