// Fault-tolerance example: a worker node dies mid-application and the
// scheduler reroutes its tasks to the survivors — the extension built on
// the MPI_Comm_connect/accept direction the paper names as future work
// (task retry with executor blacklisting, plus FetchFailed-driven
// map-stage resubmission for lost shuffle outputs; see DESIGN.md §6).
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"mpi4spark/internal/fabric"
	"mpi4spark/internal/metrics"
	"mpi4spark/internal/spark"
	"mpi4spark/internal/spark/deploy"
)

func main() {
	f := fabric.New(fabric.NewIBHDRModel())
	workers := []*fabric.Node{f.AddNode("w0"), f.AddNode("w1"), f.AddNode("w2")}
	cl, err := deploy.StartCluster(deploy.Config{
		Fabric:         f,
		WorkerNodes:    workers,
		MasterNode:     f.AddNode("master"),
		DriverNode:     f.AddNode("driver"),
		SlotsPerWorker: 2,
		Backend:        spark.BackendVanilla,
		CPU:            spark.DefaultCPUModel(),
		Spark:          spark.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	data := spark.Generate(cl.Ctx, 6, func(part int, tc *spark.TaskContext) []int64 {
		out := make([]int64, 1000)
		for i := range out {
			out[i] = int64(part*1000 + i)
		}
		tc.ChargeRecords(len(out), 8*len(out))
		return out
	})

	sum, err := spark.Reduce(data, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before failure: sum = %d across %d executors\n", sum, len(cl.Executors))

	// Materialize a shuffle so w1 holds registered map outputs when it
	// dies: losing them forces the scheduler down the FetchFailed path,
	// not just task rerouting.
	conf := spark.ShuffleConf[int64, int64]{
		Codec: spark.PairCodec[int64, int64]{Key: spark.Int64Codec{}, Val: spark.Int64Codec{}},
		Ops:   spark.Int64Key{},
		Parts: 6,
	}
	byKey := spark.ReduceByKey(
		spark.KeyBy(data, func(v int64) int64 { return v % 10 }),
		conf,
		func(a, b int64) int64 { return a + b },
	)
	if _, err := spark.Collect(byKey); err != nil {
		log.Fatal(err)
	}

	fmt.Println("injecting failure: node w1 goes down")
	f.FailNode("w1")

	// The same jobs run again. Map-only tasks destined for w1's executor
	// fail to launch and get rerouted; reduce tasks fetching w1's shuffle
	// blocks hit FetchFailedError, and the scheduler resubmits exactly the
	// lost map tasks on the survivors.
	sum2, err := spark.Reduce(data, func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatalf("job did not survive the failure: %v", err)
	}
	fmt.Printf("after failure:  sum = %d (identical), rerouted around w1\n", sum2)

	groups, err := spark.Collect(byKey)
	if err != nil {
		log.Fatalf("shuffle job did not survive the failure: %v", err)
	}
	fmt.Printf("after failure:  %d shuffle groups recovered via %d map-stage resubmission(s)\n",
		len(groups), metrics.CounterValue("scheduler.map_stage.resubmissions"))
	for _, s := range cl.Ctx.Stages() {
		fmt.Printf("  %-22s %v\n", s.Name, s.Duration().AsDuration())
	}
}
