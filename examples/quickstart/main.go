// Quickstart: a distributed word count on an MPI4Spark cluster.
//
// It shows the complete public API surface a user touches: building a
// simulated fabric, launching the MPI4Spark cluster (the paper's Fig. 3
// flow), composing RDD transformations, and running actions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"mpi4spark/internal/core"
	"mpi4spark/internal/fabric"
	"mpi4spark/internal/spark"
)

func main() {
	// 1. A simulated 2-worker cluster on an InfiniBand HDR fabric.
	f := fabric.New(fabric.NewIBHDRModel())
	workers := []*fabric.Node{f.AddNode("w0"), f.AddNode("w1")}
	master, driver := f.AddNode("master"), f.AddNode("driver")

	// 2. Launch MPI4Spark (Optimized design): mpiexec-style wrapper ranks,
	//    DPM-spawned executors, MPI-backed Netty underneath Spark.
	cl, err := core.LaunchMPICluster(core.ClusterConfig{
		Fabric:         f,
		WorkerNodes:    workers,
		MasterNode:     master,
		DriverNode:     driver,
		SlotsPerWorker: 2,
		Design:         core.DesignOptimized,
		CPU:            spark.DefaultCPUModel(),
		Spark:          spark.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// 3. Compose RDD transformations exactly as in Spark.
	corpus := []string{
		"it is what it is",
		"what is mpi",
		"mpi is a message passing interface",
	}
	lines := spark.Parallelize(cl.Ctx, corpus, 4)
	words := spark.FlatMap(lines, strings.Fields)
	ones := spark.Map(words, func(w string) spark.Pair[string, int64] {
		return spark.Pair[string, int64]{K: w, V: 1}
	})
	counts := spark.ReduceByKey(ones, spark.ShuffleConf[string, int64]{
		Codec: spark.PairCodec[string, int64]{Key: spark.StringCodec{}, Val: spark.Int64Codec{}},
		Ops:   spark.StringKey{},
		Parts: 4,
	}, func(a, b int64) int64 { return a + b })

	// 4. Run an action; the shuffle bodies just crossed the simulated
	//    fabric over MPI rendezvous while headers stayed on sockets.
	out, err := spark.Collect(counts)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V > out[j].V })
	fmt.Println("word counts:")
	for _, p := range out {
		fmt.Printf("  %-10s %d\n", p.K, p.V)
	}

	fmt.Println("\nstage breakdown (virtual time):")
	for _, s := range cl.Ctx.Stages() {
		fmt.Printf("  %-22s %v\n", s.Name, s.Duration().AsDuration())
	}
}
