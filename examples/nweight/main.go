// NWeight example: n-hop association weights over a random graph — the
// HiBench graph workload — run through the raw RDD API so the Join /
// ReduceByKey iteration structure is visible.
//
//	go run ./examples/nweight
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpi4spark/internal/bytebuf"
	"mpi4spark/internal/harness"
	"mpi4spark/internal/spark"
)

// edge mirrors hibench.Edge with a local codec, showing how a user supplies
// a codec for a custom record type.
type edge struct {
	dst int64
	w   float64
}

type edgeCodec struct{}

func (edgeCodec) Encode(buf *bytebuf.Buf, e edge) {
	buf.WriteInt64(e.dst)
	spark.Float64Codec{}.Encode(buf, e.w)
}

func (edgeCodec) Decode(buf *bytebuf.Buf) (edge, error) {
	d, err := buf.ReadInt64()
	if err != nil {
		return edge{}, err
	}
	w, err := spark.Float64Codec{}.Decode(buf)
	return edge{dst: d, w: w}, err
}

func main() {
	cl, err := harness.BuildCluster(harness.ClusterSpec{
		System:         harness.Frontera,
		Workers:        4,
		Backend:        spark.BackendMPIOpt,
		SlotsPerWorker: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	const (
		vertices = 4000
		degree   = 6
		hops     = 2
		parts    = 8
	)

	edges := spark.Generate(cl.Ctx, parts, func(part int, tc *spark.TaskContext) []spark.Pair[int64, edge] {
		rng := rand.New(rand.NewSource(int64(part)))
		per := vertices / parts
		out := make([]spark.Pair[int64, edge], 0, per*degree)
		for i := 0; i < per; i++ {
			src := int64(part*per + i)
			for d := 0; d < degree; d++ {
				out = append(out, spark.Pair[int64, edge]{
					K: src, V: edge{dst: rng.Int63n(vertices), w: rng.Float64()},
				})
			}
		}
		tc.ChargeRecords(len(out), len(out)*16)
		return out
	}).Cache()

	edgeConf := spark.ShuffleConf[int64, edge]{
		Codec: spark.PairCodec[int64, edge]{Key: spark.Int64Codec{}, Val: edgeCodec{}},
		Ops:   spark.Int64Key{},
		Parts: parts,
	}
	wConf := spark.ShuffleConf[int64, float64]{
		Codec: spark.PairCodec[int64, float64]{Key: spark.Int64Codec{}, Val: spark.Float64Codec{}},
		Ops:   spark.Int64Key{},
		Parts: parts,
	}

	// Unit mass at every vertex, propagated for `hops` iterations.
	frontier := spark.Map(
		spark.Parallelize(cl.Ctx, seq(vertices), parts),
		func(v int64) spark.Pair[int64, float64] { return spark.Pair[int64, float64]{K: v, V: 1} },
	)
	for h := 0; h < hops; h++ {
		joined := spark.Join(edges, edgeConf, frontier, wConf)
		messages := spark.Map(joined, func(p spark.Pair[int64, spark.Pair[edge, float64]]) spark.Pair[int64, float64] {
			return spark.Pair[int64, float64]{K: p.V.K.dst, V: p.V.K.w * p.V.V}
		})
		frontier = spark.ReduceByKey(messages, wConf, func(a, b float64) float64 { return a + b })
	}

	top, err := spark.Top(frontier, 5, func(a, b spark.Pair[int64, float64]) bool { return a.V < b.V })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 vertices by %d-hop association weight:\n", hops)
	for _, p := range top {
		fmt.Printf("  vertex %-6d %.2f\n", p.K, p.V)
	}
	fmt.Printf("\n%d stages executed in %v (virtual)\n",
		len(cl.Ctx.Stages()), cl.Ctx.Clock().AsDuration())
}

func seq(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
