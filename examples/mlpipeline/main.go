// ML pipeline example: logistic regression trained with distributed
// gradient descent (the HiBench LR workload) on all three communication
// backends, printing the loss curve and per-backend virtual training time.
//
//	go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"mpi4spark/internal/harness"
	"mpi4spark/internal/hibench"
	"mpi4spark/internal/spark"
)

func main() {
	cfg := hibench.MLConfig{
		Parts:      8,
		PerPart:    3000,
		Dim:        32,
		Iterations: 5,
		StepSize:   0.5,
		Seed:       7,
	}

	backends := []spark.Backend{spark.BackendVanilla, spark.BackendRDMA, spark.BackendMPIOpt}
	for _, backend := range backends {
		cl, err := harness.BuildCluster(harness.ClusterSpec{
			System:         harness.Frontera,
			Workers:        4,
			Backend:        backend,
			SlotsPerWorker: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := hibench.RunLogisticRegression(cl.Ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s final log-loss %.4f  training time %v (virtual, %d stages)\n",
			backend, res.Metric, res.Total.AsDuration(), len(res.Stages))
		cl.Close()
	}
	fmt.Println("\nIdentical losses across backends confirm the communication")
	fmt.Println("substitution is semantically transparent — only time differs.")
}
