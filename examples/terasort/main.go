// TeraSort example: globally sorting 100-byte records across the cluster,
// comparing Vanilla Spark against MPI4Spark on the same data.
//
//	go run ./examples/terasort
package main

import (
	"fmt"
	"log"

	"mpi4spark/internal/harness"
	"mpi4spark/internal/hibench"
	"mpi4spark/internal/spark"
)

func main() {
	cfg := hibench.TeraSortConfig{Parts: 8, RowsPer: 20000, Seed: 42}

	for _, backend := range []spark.Backend{spark.BackendVanilla, spark.BackendMPIOpt} {
		cl, err := harness.BuildCluster(harness.ClusterSpec{
			System:         harness.Frontera,
			Workers:        4,
			Backend:        backend,
			SlotsPerWorker: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := hibench.RunTeraSort(cl.Ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s sorted %.0f records in %v (virtual)\n",
			backend, res.Metric, res.Total.AsDuration())
		for _, s := range res.Stages {
			fmt.Printf("  %-22s %v\n", s.Name, s.Duration().AsDuration())
		}
		cl.Close()
	}
}
