// Package mpi4spark is a Go reproduction of "Spark Meets MPI: Towards
// High-Performance Communication Framework for Spark using MPI" (Al-Attar
// et al., IEEE CLUSTER 2022).
//
// The repository builds the paper's full stack from scratch on a simulated
// HPC fabric: a miniature Apache Spark (internal/spark), a Netty-style
// event-driven framework (internal/netty), an MPI library with dynamic
// process management (internal/mpi), the RDMA-Spark baseline's UCR runtime
// (internal/rdma, internal/ucr), and the paper's contribution — the
// MPI-backed Netty transports and the mpiexec-style launcher — in
// internal/core. The benchmarks in bench_test.go regenerate every figure
// of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package mpi4spark
