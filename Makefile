# MPI4Spark (Go reproduction) — common targets.

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... 2>&1 | tee test_output.txt

race:
	go test -race -short ./...

bench:
	go test -bench=. -benchmem -benchtime=3x ./... 2>&1 | tee bench_output.txt

# Regenerate every figure/table of the paper's evaluation.
experiments:
	go run ./cmd/experiments -exp all -md

examples:
	go run ./examples/quickstart
	go run ./examples/terasort
	go run ./examples/nweight
	go run ./examples/mlpipeline
	go run ./examples/faulttolerance

clean:
	rm -f test_output.txt bench_output.txt
